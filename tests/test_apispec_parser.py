"""Tests for the .api stub parser."""

import pytest

from repro.apispec import ApiParseError, parse_api


class TestPackagesAndTypes:
    def test_package_header(self):
        f = parse_api("package a.b; class C {}")
        assert f.package == "a.b"
        assert f.declarations[0].qualified_name == "a.b.C"

    def test_default_package(self):
        f = parse_api("class C {}")
        assert f.declarations[0].qualified_name == "C"

    def test_multiple_package_sections(self):
        f = parse_api("package a; class A {} package b; class B {}")
        names = [d.qualified_name for d in f.declarations]
        assert names == ["a.A", "b.B"]

    def test_class_with_extends_and_implements(self):
        f = parse_api("package p; class C extends D implements I, J {}")
        d = f.declarations[0]
        assert [str(t) for t in d.extends] == ["D"]
        assert [str(t) for t in d.implements] == ["I", "J"]

    def test_interface_extends_multiple(self):
        f = parse_api("package p; interface K extends I, J {}")
        d = f.declarations[0]
        assert d.is_interface
        assert [str(t) for t in d.extends] == ["I", "J"]

    def test_interface_cannot_implement(self):
        with pytest.raises(ApiParseError):
            parse_api("package p; interface K implements I {}")

    def test_modifiers_recorded(self):
        f = parse_api("package p; public abstract class C {}")
        assert "abstract" in f.declarations[0].modifiers


class TestMembers:
    def test_field(self):
        f = parse_api("package p; class C { java.lang.String name; }")
        m = f.declarations[0].members[0]
        assert m.is_field
        assert str(m.return_type) == "java.lang.String"

    def test_method_with_params(self):
        f = parse_api("package p; class C { int size(D d, int n); }")
        m = f.declarations[0].members[0]
        assert not m.is_field and not m.is_constructor
        assert m.name == "size"
        assert len(m.params) == 2
        assert m.params[0].name == "d"
        assert m.params[1].type.is_primitive

    def test_params_without_names(self):
        f = parse_api("package p; class C { void f(D, E); }")
        m = f.declarations[0].members[0]
        assert all(p.name is None for p in m.params)

    def test_constructor(self):
        f = parse_api("package p; class C { C(D d); }")
        m = f.declarations[0].members[0]
        assert m.is_constructor
        assert m.return_type is None

    def test_method_named_like_other_class_is_not_constructor(self):
        f = parse_api("package p; class C { D D(); }")
        m = f.declarations[0].members[0]
        assert not m.is_constructor
        assert m.name == "D"

    def test_static_modifier(self):
        f = parse_api("package p; class C { static C getDefault(); }")
        assert "static" in f.declarations[0].members[0].modifiers

    def test_array_types(self):
        f = parse_api("package p; class C { D[] all(); int[][] grid; }")
        method, field = f.declarations[0].members
        assert method.return_type.dims == 1
        assert field.return_type.dims == 2

    def test_void_return(self):
        f = parse_api("package p; class C { void run(); }")
        assert f.declarations[0].members[0].return_type.is_void

    def test_void_array_rejected(self):
        with pytest.raises(ApiParseError):
            parse_api("package p; class C { void[] bad(); }")

    def test_visibility_modifiers(self):
        f = parse_api("package p; class C { protected D hidden(); private D secret(); }")
        mods = [m.modifiers for m in f.declarations[0].members]
        assert "protected" in mods[0]
        assert "private" in mods[1]


class TestErrors:
    def test_missing_brace(self):
        with pytest.raises(ApiParseError):
            parse_api("package p; class C {")

    def test_garbage_member(self):
        with pytest.raises(ApiParseError):
            parse_api("package p; class C { extends; }")

    def test_error_carries_source_name(self):
        with pytest.raises(ApiParseError) as exc:
            parse_api("class {", source="broken.api")
        assert "broken.api" in str(exc.value)
