"""Tests for the CHA call graph."""

from repro.apispec import load_api_text
from repro.minijava import build_call_graph, parse_minijava, resolve_program

API = """
package java.lang;
public class String {}
package lib;
public class Service {
  public Service();
  public String name();
}
"""

CORPUS = """
package c;
import lib.Service;

class Base {
  public String label(Service s) { return s.name(); }
}

class Derived extends Base {
  public String label(Service s) { return s.name(); }
}

class Caller {
  public String go(Base b, Service s) {
    return b.label(s);
  }
  public String direct(Derived d, Service s) {
    return d.label(s);
  }
  public String helper(Service s) {
    return makeLabel(s);
  }
  public String makeLabel(Service s) { return s.name(); }
}
"""


def build():
    registry = load_api_text(API)
    unit = parse_minijava(CORPUS, "c.mj")
    resolve_program(registry, [unit])
    return registry, unit, build_call_graph(registry, [unit])


def method_decl(unit, cls_name, method_name):
    cls = next(c for c in unit.classes if c.name == cls_name)
    return next(m for m in cls.methods if m.name == method_name)


class TestCallGraph:
    def test_bodies_registered(self):
        _, unit, cg = build()
        assert len(cg.methods) == 6
        decl = method_decl(unit, "Caller", "go")
        assert cg.declaration_of(decl.resolved_method) is decl

    def test_cha_virtual_dispatch_includes_overrides(self):
        _, unit, cg = build()
        go = method_decl(unit, "Caller", "go")
        sites = cg.call_sites_in(go)
        label_site = next(s for s in sites if s.call.name == "label")
        owners = {str(t.owner) for t in label_site.targets}
        assert owners == {"c.Base", "c.Derived"}

    def test_cha_exact_for_leaf_receiver(self):
        _, unit, cg = build()
        direct = method_decl(unit, "Caller", "direct")
        label_site = next(s for s in cg.call_sites_in(direct) if s.call.name == "label")
        owners = {str(t.owner) for t in label_site.targets}
        assert owners == {"c.Derived"}

    def test_callers_of_override(self):
        _, unit, cg = build()
        derived_label = method_decl(unit, "Derived", "label").resolved_method
        callers = {s.caller.name for s in cg.call_sites_of(derived_label)}
        # Both `go` (CHA on Base) and `direct` (exact) may invoke it.
        assert callers == {"go", "direct"}

    def test_unqualified_call_site(self):
        _, unit, cg = build()
        make_label = method_decl(unit, "Caller", "makeLabel").resolved_method
        callers = {s.caller.name for s in cg.call_sites_of(make_label)}
        assert "helper" in callers

    def test_api_calls_indexed_too(self):
        registry, unit, cg = build()
        name_method = registry.find_method(registry.lookup("lib.Service"), "name")[0]
        sites = cg.call_sites_of(name_method)
        # Base.label, Derived.label, and Caller.makeLabel call s.name().
        assert len(sites) == 3
