"""Tests for registry / jungloid / bundle serialization."""

import json

import pytest

from repro.apispec import generate_synthetic_api, SyntheticApiConfig, load_api_text
from repro.graph import (
    bundle_from_json,
    bundle_to_json,
    elementary_from_dict,
    elementary_to_dict,
    jungloid_from_dict,
    jungloid_to_dict,
    load_graph_from_json,
    registry_from_dict,
    registry_to_dict,
    type_from_string,
    type_to_string,
)
from repro.jungloids import Jungloid, ElementaryKind, downcast, instance_call, widening
from repro.typesystem import ArrayType, PRIMITIVES, VOID, named

API = """
package java.lang;
public class String {}
package s;
public interface IThing { String label(); }
public abstract class Base implements IThing {
  public String label();
  public static Base getDefault();
  public Base twin;
}
public class Leaf extends Base {
  public Leaf(Base parent, int n);
  public Leaf[] children();
}
"""


class TestTypeStrings:
    @pytest.mark.parametrize(
        "text",
        ["void", "int", "java.lang.String", "s.Leaf[]", "int[][]"],
    )
    def test_roundtrip(self, text):
        assert type_to_string(type_from_string(text)) == text

    def test_parses_to_expected_kinds(self):
        assert type_from_string("void") == VOID
        assert type_from_string("int") == PRIMITIVES["int"]
        assert type_from_string("a.B") == named("a.B")
        assert isinstance(type_from_string("a.B[]"), ArrayType)


class TestRegistryRoundtrip:
    def test_roundtrip_preserves_everything(self):
        original = load_api_text(API)
        restored = registry_from_dict(registry_to_dict(original))
        assert restored.stats() == original.stats()
        leaf = restored.lookup("s.Leaf")
        assert restored.is_subtype(leaf, restored.lookup("s.IThing"))
        ctor = restored.constructors_of(leaf)[0]
        assert [str(t) for t in ctor.parameter_types] == ["s.Base", "int"]
        assert restored.declaration_of(restored.lookup("s.Base")).abstract

    def test_roundtrip_synthetic_scale(self):
        original = generate_synthetic_api(SyntheticApiConfig(packages=3))
        restored = registry_from_dict(registry_to_dict(original))
        assert restored.stats() == original.stats()

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError):
            registry_from_dict({"format": "nope", "types": []})

    def test_object_methods_preserved(self):
        original = load_api_text(API)
        from repro.typesystem import Method

        original.add_method(Method(original.object_type, "toString", named("java.lang.String")))
        restored = registry_from_dict(registry_to_dict(original))
        assert restored.find_method(restored.object_type, "toString")


class TestJungloidRoundtrip:
    def _registry(self):
        return load_api_text(API)

    def test_instance_call_roundtrip(self):
        r = self._registry()
        m = r.find_method(r.lookup("s.Base"), "label")[0]
        e = instance_call(m)[0]
        restored = elementary_from_dict(r, elementary_to_dict(e))
        assert restored == e

    def test_widening_and_cast_roundtrip(self):
        r = self._registry()
        for e in (
            widening(named("s.Leaf"), named("s.Base")),
            downcast(named("s.Base"), named("s.Leaf")),
        ):
            assert elementary_from_dict(r, elementary_to_dict(e)) == e

    def test_constructor_variant_roundtrip(self):
        from repro.jungloids import constructor_call

        r = self._registry()
        ctor = r.constructors_of(r.lookup("s.Leaf"))[0]
        e = constructor_call(ctor)[0]  # flow through the Base parameter
        restored = elementary_from_dict(r, elementary_to_dict(e))
        assert restored.flow_position == e.flow_position
        assert restored == e

    def test_whole_jungloid_roundtrip(self):
        r = self._registry()
        m = r.find_method(r.lookup("s.Base"), "label")[0]
        j = Jungloid.of(widening(named("s.Leaf"), named("s.Base")), instance_call(m)[0])
        restored = jungloid_from_dict(r, jungloid_to_dict(j))
        assert restored.steps == j.steps

    def test_unknown_member_rejected(self):
        r = self._registry()
        entry = {
            "kind": "call",
            "input": "s.Base",
            "output": "java.lang.String",
            "flow": -1,
            "member": {"method": "ghost", "owner": "s.Base", "params": []},
        }
        with pytest.raises(ValueError):
            elementary_from_dict(r, entry)


class TestEveryKindRoundtrip:
    """Satellite coverage: one serialize round-trip per ElementaryKind,
    plus array-typed members and mined multi-step jungloids, so a
    snapshot can never silently drop a step shape."""

    def _registry(self):
        return load_api_text(API)

    def _one_of_each(self, r):
        from repro.jungloids import constructor_call, field_access, static_call

        base = r.lookup("s.Base")
        leaf = r.lookup("s.Leaf")
        return {
            ElementaryKind.FIELD_ACCESS: field_access(r.find_field(base, "twin")),
            ElementaryKind.STATIC_CALL: static_call(
                r.find_method(base, "getDefault")[0]
            )[0],
            ElementaryKind.CONSTRUCTOR: constructor_call(r.constructors_of(leaf)[0])[0],
            ElementaryKind.INSTANCE_CALL: instance_call(
                r.find_method(base, "label")[0]
            )[0],
            ElementaryKind.WIDENING: widening(named("s.Leaf"), named("s.Base")),
            ElementaryKind.DOWNCAST: downcast(named("s.Base"), named("s.Leaf")),
        }

    @pytest.mark.parametrize("kind", list(ElementaryKind))
    def test_kind_roundtrips(self, kind):
        r = self._registry()
        e = self._one_of_each(r)[kind]
        entry = elementary_to_dict(e)
        assert entry["kind"] == kind.value
        restored = elementary_from_dict(r, entry)
        assert restored == e
        assert restored.kind is kind

    def test_array_returning_method_roundtrips(self):
        r = self._registry()
        m = r.find_method(r.lookup("s.Leaf"), "children")[0]
        e = instance_call(m)[0]
        restored = elementary_from_dict(r, elementary_to_dict(e))
        assert restored == e
        assert isinstance(restored.output_type, ArrayType)
        assert type_to_string(restored.output_type) == "s.Leaf[]"

    def test_array_widening_roundtrips(self):
        r = self._registry()
        e = widening(type_from_string("s.Leaf[]"), r.object_type)
        assert elementary_from_dict(r, elementary_to_dict(e)) == e

    def test_mined_multistep_survives_bundle(self):
        from repro.jungloids import field_access, static_call

        r = self._registry()
        base = r.lookup("s.Base")
        mined = [
            # static getDefault() -> .twin field -> widen to IThing
            Jungloid.of(
                static_call(r.find_method(base, "getDefault")[0])[0],
                field_access(r.find_field(base, "twin")),
                widening(named("s.Base"), named("s.IThing")),
            ),
            # downcast then instance call
            Jungloid.of(
                downcast(named("s.Base"), named("s.Leaf")),
                instance_call(r.find_method(r.lookup("s.Leaf"), "children")[0])[0],
            ),
        ]
        registry2, mined2 = bundle_from_json(bundle_to_json(r, mined))
        assert len(mined2) == 2
        for original, restored in zip(mined, mined2):
            assert restored.steps == original.steps
            assert [s.kind for s in restored.steps] == [
                s.kind for s in original.steps
            ]
            assert restored.length == original.length

    def test_every_kind_survives_snapshot(self, tmp_path):
        """Belt and braces: the same shapes through the durable store."""
        from repro.store import SnapshotStore

        r = self._registry()
        mined = [Jungloid.of(e) for e in self._one_of_each(r).values()]
        store = SnapshotStore(tmp_path / "kinds.psnap")
        store.save(r, mined)
        loaded = store.load()
        assert [j.steps for j in loaded.mined] == [j.steps for j in mined]


class TestBundle:
    def test_bundle_roundtrip_and_rebuild(self):
        r = load_api_text(API)
        m = r.find_method(r.lookup("s.Base"), "label")[0]
        mined = Jungloid.of(
            instance_call(m)[0],
        )
        text = bundle_to_json(r, [mined])
        json.loads(text)  # valid JSON
        registry2, mined2 = bundle_from_json(text)
        assert registry2.stats() == r.stats()
        assert mined2[0].steps == mined.steps

        graph = load_graph_from_json(text)
        assert graph.mined_path_count() == 1

    def test_bundle_bad_format(self):
        with pytest.raises(ValueError):
            bundle_from_json('{"format": "bogus"}')
