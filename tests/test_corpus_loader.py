"""Tests for corpus loading and registry cloning."""

import pytest

from repro.corpus import clone_registry, load_corpus_texts
from repro.minijava import MjTypeError


class TestCloneRegistry:
    def test_clone_is_independent(self, small_registry):
        clone = clone_registry(small_registry)
        assert clone.stats() == small_registry.stats()
        clone.declare("extra.Thing")
        assert "extra.Thing" in clone
        assert "extra.Thing" not in small_registry

    def test_clone_preserves_hierarchy(self, small_registry):
        clone = clone_registry(small_registry)
        assert clone.is_subtype(
            clone.lookup("demo.io.BufferedReader"), clone.lookup("demo.io.Reader")
        )


class TestLoadCorpus:
    def test_api_registry_untouched(self, small_registry):
        before = small_registry.stats()
        load_corpus_texts(
            small_registry,
            [("x.mj", "package c; class K { }")],
        )
        assert small_registry.stats() == before

    def test_corpus_program_contents(self, small_registry):
        program = load_corpus_texts(
            small_registry,
            [
                ("a.mj", "package c; class A { void f() { } }"),
                ("b.mj", "package c; class B { void g() { } void h() { } }"),
            ],
        )
        assert program.class_count == 2
        assert program.method_count == 3
        assert {str(t) for t in program.corpus_types} == {"c.A", "c.B"}
        assert program.check_report is not None and program.check_report.ok

    def test_type_errors_raise_by_default(self, small_registry):
        with pytest.raises(MjTypeError):
            load_corpus_texts(
                small_registry,
                [("bad.mj", "package c; class K { void f() { int x = null; } }")],
            )

    def test_check_can_be_disabled(self, small_registry):
        program = load_corpus_texts(
            small_registry,
            [("bad.mj", "package c; class K { void f() { int x = null; } }")],
            check=False,
        )
        assert program.check_report is None

    def test_corpus_can_reference_api(self, small_registry):
        program = load_corpus_texts(
            small_registry,
            [
                (
                    "x.mj",
                    """
                    package c;
                    import demo.ui.Panel;
                    import demo.ui.Viewer;
                    class K { Viewer v(Panel p) { return p.getViewer(); } }
                    """,
                )
            ],
        )
        assert program.registry is not small_registry
        assert "c.K" in program.registry
