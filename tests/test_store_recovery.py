"""Tests for the recovery ladder, StoreDiagnostics, and fault injectors.

The acceptance property: a snapshot truncated or bit-flipped at an
arbitrary offset never crashes the engine — verification reports the
damage and a query still answers via the ladder, with the rung taken
visible in the diagnostics.
"""

import pytest

from repro import Prospector
from repro.robustness import (
    FlakyFileSystem,
    corrupt_file,
    flip_byte,
    truncate_bytes,
)
from repro.store import (
    RUNG_CURRENT,
    RUNG_PREVIOUS,
    RUNG_REBUILD,
    SnapshotStore,
    StoreDiagnostics,
    StoreRecoveryError,
    load_with_recovery,
    repair,
    verify_snapshot,
)


@pytest.fixture()
def saved_store(tmp_path, small_prospector):
    store = SnapshotStore(tmp_path / "graph.psnap")
    small_prospector.save_snapshot(store.path)
    return store


def _rebuild_from(prospector):
    def rebuild():
        return prospector.registry, prospector.mined_jungloids

    return rebuild


class TestLadder:
    def test_clean_load_uses_current_rung(self, saved_store):
        recovered = load_with_recovery(saved_store)
        assert recovered.rung_used == RUNG_CURRENT
        assert recovered.diagnostics.ok
        assert not recovered.diagnostics.degraded

    def test_corrupt_current_falls_to_previous(self, saved_store, small_prospector):
        small_prospector.save_snapshot(saved_store.path)  # rotate a .prev out
        corrupt_file(saved_store.path, lambda b: flip_byte(b, len(b) // 2))
        recovered = load_with_recovery(saved_store)
        assert recovered.rung_used == RUNG_PREVIOUS
        assert recovered.diagnostics.degraded
        assert recovered.diagnostics.faults_for(RUNG_CURRENT)

    def test_both_generations_bad_rebuilds(self, saved_store, small_prospector):
        small_prospector.save_snapshot(saved_store.path)
        corrupt_file(saved_store.path, lambda b: truncate_bytes(b, 10))
        corrupt_file(saved_store.previous_path, lambda b: flip_byte(b, 100))
        recovered = load_with_recovery(
            saved_store, rebuild=_rebuild_from(small_prospector)
        )
        assert recovered.rung_used == RUNG_REBUILD
        assert len(recovered.mined) == len(small_prospector.mined_jungloids)
        rungs_failed = {f.rung for f in recovered.diagnostics.faults}
        assert rungs_failed == {RUNG_CURRENT, RUNG_PREVIOUS}

    def test_all_rungs_fail_raises_with_diagnostics(self, saved_store):
        corrupt_file(saved_store.path, lambda b: truncate_bytes(b, 0))

        def always_fails():
            raise RuntimeError("corpus volume offline")

        with pytest.raises(StoreRecoveryError) as exc_info:
            load_with_recovery(saved_store, rebuild=always_fails,
                               max_rebuild_attempts=2, sleep=lambda s: None)
        diagnostics = exc_info.value.diagnostics
        assert diagnostics.rung_used is None
        assert diagnostics.rebuild_attempts == 2
        assert "corpus volume offline" in diagnostics.summary()

    def test_no_rebuild_callable_raises(self, saved_store):
        corrupt_file(saved_store.path, lambda b: truncate_bytes(b, 0))
        with pytest.raises(StoreRecoveryError):
            load_with_recovery(saved_store)


class TestRebuildRetry:
    def test_flaky_rebuild_retries_with_backoff(self, saved_store, small_prospector):
        corrupt_file(saved_store.path, lambda b: truncate_bytes(b, 5))
        calls = {"n": 0}
        naps = []

        def flaky_rebuild():
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError("transient")
            return small_prospector.registry, small_prospector.mined_jungloids

        recovered = load_with_recovery(
            saved_store,
            rebuild=flaky_rebuild,
            max_rebuild_attempts=3,
            backoff_ms=10.0,
            sleep=naps.append,
        )
        assert recovered.rung_used == RUNG_REBUILD
        assert recovered.diagnostics.rebuild_attempts == 3
        # Exponential backoff: 10 ms then 20 ms.
        assert naps == [0.01, 0.02]

    def test_retry_budget_is_bounded(self, saved_store):
        corrupt_file(saved_store.path, lambda b: truncate_bytes(b, 5))
        calls = {"n": 0}

        def always_fails():
            calls["n"] += 1
            raise OSError("still down")

        with pytest.raises(StoreRecoveryError):
            load_with_recovery(
                saved_store, rebuild=always_fails,
                max_rebuild_attempts=4, sleep=lambda s: None,
            )
        assert calls["n"] == 4


class TestFlakyFileSystem:
    def test_transient_read_fault_descends_ladder(self, tmp_path, small_prospector):
        path = tmp_path / "graph.psnap"
        small_prospector.save_snapshot(path)
        small_prospector.save_snapshot(path)  # both generations on disk
        fs = FlakyFileSystem(fail_times=1)  # current read fails, prev succeeds
        store = SnapshotStore(path, read_bytes=fs.read_bytes)
        recovered = load_with_recovery(store)
        assert recovered.rung_used == RUNG_PREVIOUS
        assert fs.calls == 2
        [fault] = recovered.diagnostics.faults
        assert fault.stage == "read"

    def test_persistent_fault_exhausts_file_rungs(self, tmp_path, small_prospector):
        path = tmp_path / "graph.psnap"
        small_prospector.save_snapshot(path)
        fs = FlakyFileSystem(fail_times=10)
        store = SnapshotStore(path, read_bytes=fs.read_bytes)
        recovered = load_with_recovery(store, rebuild=_rebuild_from(small_prospector))
        assert recovered.rung_used == RUNG_REBUILD


class TestArbitraryCorruption:
    """The headline guarantee, swept across the whole file."""

    OFFSETS = [0.0, 0.05, 0.15, 0.3, 0.5, 0.7, 0.9, 0.99]

    @pytest.mark.parametrize("fraction", OFFSETS)
    def test_bit_flip_never_crashes_query(
        self, tmp_path, small_prospector, fraction
    ):
        path = tmp_path / "graph.psnap"
        small_prospector.save_snapshot(path)
        corrupt_file(
            path, lambda b: flip_byte(b, int(len(b) * fraction))
        )
        # verify never raises; it reports (or finds the flip harmless —
        # only possible in non-checksummed header fields).
        verify_snapshot(SnapshotStore(path))
        prospector = Prospector.from_snapshot(
            path, rebuild=_rebuild_from(small_prospector), sleep=lambda s: None
        )
        results = prospector.query("demo.io.InputStream", "demo.io.BufferedReader")
        assert results
        assert prospector.store_diagnostics.rung_used is not None

    @pytest.mark.parametrize("fraction", OFFSETS)
    def test_truncation_never_crashes_query(
        self, tmp_path, small_prospector, fraction
    ):
        path = tmp_path / "graph.psnap"
        small_prospector.save_snapshot(path)
        corrupt_file(path, lambda b: truncate_bytes(b, int(len(b) * fraction)))
        diagnostics = verify_snapshot(SnapshotStore(path))
        assert diagnostics.faults  # a shorter payload is always detected
        prospector = Prospector.from_snapshot(
            path, rebuild=_rebuild_from(small_prospector), sleep=lambda s: None
        )
        results = prospector.query("demo.io.InputStream", "demo.io.BufferedReader")
        assert results
        assert prospector.store_diagnostics.rung_used == RUNG_REBUILD
        assert prospector.store_diagnostics.degraded


class TestRepair:
    def test_repair_noop_when_sound(self, saved_store):
        before = saved_store.path.read_bytes()
        recovered = repair(saved_store)
        assert recovered.rung_used == RUNG_CURRENT
        assert saved_store.path.read_bytes() == before

    def test_repair_rewrites_from_previous(self, saved_store, small_prospector):
        small_prospector.save_snapshot(saved_store.path)
        corrupt_file(saved_store.path, lambda b: flip_byte(b, len(b) - 3))
        prev_before = saved_store.previous_path.read_bytes()
        recovered = repair(saved_store)
        assert recovered.rung_used == RUNG_PREVIOUS
        # Current is sound again, and the good previous generation was
        # NOT clobbered by the damaged file.
        assert not verify_snapshot(saved_store).faults
        assert saved_store.previous_path.read_bytes() == prev_before

    def test_repair_rebuilds_when_no_previous(self, saved_store, small_prospector):
        corrupt_file(saved_store.path, lambda b: truncate_bytes(b, 20))
        recovered = repair(saved_store, rebuild=_rebuild_from(small_prospector))
        assert recovered.rung_used == RUNG_REBUILD
        assert not verify_snapshot(saved_store).faults


class TestDiagnostics:
    def test_summary_ok(self, saved_store):
        diagnostics = verify_snapshot(saved_store)
        assert "store ok" in diagnostics.summary()
        assert diagnostics.ok

    def test_summary_migrated(self, tmp_path, small_registry):
        from repro.graph import bundle_to_json

        path = tmp_path / "legacy.json"
        path.write_text(bundle_to_json(small_registry, []), encoding="utf-8")
        diagnostics = verify_snapshot(SnapshotStore(path))
        assert "migrated from schema v1" in diagnostics.summary()

    def test_summary_lists_faults(self, saved_store):
        corrupt_file(saved_store.path, lambda b: truncate_bytes(b, 30))
        diagnostics = verify_snapshot(saved_store)
        summary = diagnostics.summary()
        assert "snapshot damaged" in summary
        assert "current-snapshot" in summary

    def test_record_and_counts(self):
        diagnostics = StoreDiagnostics()
        diagnostics.record(RUNG_CURRENT, "verify", "boom")
        assert diagnostics.fault_count == 1
        assert diagnostics.degraded
        assert str(diagnostics.faults[0]) == "current-snapshot [verify]: boom"
