"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro import Prospector
from repro.apispec import load_api_text
from repro.corpus import load_corpus_texts
from repro.data import standard_setup

#: A compact API used by most unit tests: a realistic little hierarchy
#: with constructors, static methods, fields, interfaces, and arrays.
SMALL_API = """
package java.lang;
public class String {
  public int length();
  public String trim();
}

package demo.io;
public abstract class Reader {
  public int read();
}
public class InputStream {
  public int read();
}
public class InputStreamReader extends Reader {
  public InputStreamReader(InputStream in);
}
public class StringReader extends Reader {
  public StringReader(String s);
}
public class BufferedReader extends Reader {
  public BufferedReader(Reader in);
  public String readLine();
}

package demo.ui;
public interface ISelection {
  boolean isEmpty();
}
public interface IStructuredSelection extends ISelection {
  Object getFirstElement();
}
public class Viewer {
  public Viewer();
  public ISelection getSelection();
  public Object getInput();
}
public class Panel {
  public Panel();
  public Viewer getViewer();
  public Widget[] getWidgets();
  public Item itemFor(Widget w);
  public Widget widget;
  public static Panel getDefault();
}
public class Widget {
  public Widget();
  public String getName();
}
public class Item extends Widget {
  public Item(Panel parent);
}
"""

#: A corpus exercising the mining pipeline against SMALL_API.
SMALL_CORPUS = """
package client;

import demo.ui.Panel;
import demo.ui.Viewer;
import demo.ui.ISelection;
import demo.ui.IStructuredSelection;
import demo.ui.Item;

public class Handler {
  public Item selectedItem(Panel panel) {
    Viewer viewer = panel.getViewer();
    ISelection sel = viewer.getSelection();
    IStructuredSelection ss = (IStructuredSelection) sel;
    Object first = ss.getFirstElement();
    Item item = (Item) first;
    return item;
  }

  public String describe(Panel panel) {
    Item item = selectedItem(panel);
    return item.getName();
  }
}
"""


@pytest.fixture()
def small_registry():
    return load_api_text(SMALL_API)


@pytest.fixture()
def small_corpus(small_registry):
    return load_corpus_texts(small_registry, [("handler.mj", SMALL_CORPUS)])


@pytest.fixture()
def small_prospector(small_registry, small_corpus):
    return Prospector(small_registry, small_corpus)


# Session-scoped full setup: building it is ~100 ms but used by many tests.
@pytest.fixture(scope="session")
def standard_registry_and_corpus():
    return standard_setup()


@pytest.fixture(scope="session")
def standard_prospector(standard_registry_and_corpus):
    registry, corpus = standard_registry_and_corpus
    return Prospector(registry, corpus)
