"""Tests for the post-load integrity audit."""

import pytest

from repro.apispec import load_api_text
from repro.graph import JungloidGraph
from repro.jungloids import Jungloid, downcast, instance_call, widening
from repro.store import (
    KIND_BAD_DOWNCAST,
    KIND_BAD_WIDENING,
    KIND_COUNT_MISMATCH,
    KIND_UNKNOWN_MEMBER,
    SnapshotIntegrityError,
    SnapshotManifest,
    SnapshotStore,
    audit_bundle,
    audit_counts,
    audit_mined,
)
from repro.typesystem import named

#: Two registries sharing s.Base/s.Leaf, but only RICH has the method —
#: loading a snapshot mined against RICH into POOR is the drift scenario
#: the audit exists to catch.
RICH_API = """
package java.lang;
public class String {}
package s;
public class Base { public String label(); }
public class Leaf extends Base {}
public class Stranger {}
"""

POOR_API = """
package java.lang;
public class String {}
package s;
public class Base {}
public class Leaf extends Base {}
public class Stranger {}
"""


@pytest.fixture()
def rich():
    return load_api_text(RICH_API)


@pytest.fixture()
def poor():
    return load_api_text(POOR_API)


class TestAuditMined:
    def test_clean_bundle_has_no_issues(self, rich):
        m = rich.find_method(rich.lookup("s.Base"), "label")[0]
        mined = [Jungloid.of(widening(named("s.Leaf"), named("s.Base")),
                             instance_call(m)[0])]
        assert audit_mined(rich, mined) == []

    def test_vanished_method_is_flagged(self, rich, poor):
        m = rich.find_method(rich.lookup("s.Base"), "label")[0]
        mined = [Jungloid.of(instance_call(m)[0])]
        issues = audit_mined(poor, mined)
        assert [i.kind for i in issues] == [KIND_UNKNOWN_MEMBER]
        assert "label" in issues[0].detail

    def test_bad_widening_is_flagged(self, rich):
        # Base does not widen to Stranger: unrelated hierarchies.
        mined = [Jungloid.of(widening(named("s.Base"), named("s.Stranger")))]
        issues = audit_mined(rich, mined)
        assert [i.kind for i in issues] == [KIND_BAD_WIDENING]

    def test_bad_downcast_is_flagged(self, rich):
        # Casting a Base to an unrelated Stranger can never succeed.
        mined = [Jungloid.of(downcast(named("s.Base"), named("s.Stranger")))]
        issues = audit_mined(rich, mined)
        assert [i.kind for i in issues] == [KIND_BAD_DOWNCAST]

    def test_real_downcast_is_clean(self, rich):
        mined = [Jungloid.of(downcast(named("s.Base"), named("s.Leaf")))]
        assert audit_mined(rich, mined) == []

    def test_downcast_from_object_is_clean(self, rich):
        mined = [Jungloid.of(downcast(rich.object_type, named("s.Leaf")))]
        assert audit_mined(rich, mined) == []


class TestAuditCounts:
    def _manifest(self, **overrides):
        base = dict(
            payload_sha256="0" * 64,
            payload_bytes=1,
            type_count=5,
            mined_count=0,
            node_count=0,
            edge_count=0,
        )
        base.update(overrides)
        return SnapshotManifest(**base)

    def test_matching_counts_pass(self, rich):
        manifest = self._manifest(type_count=len(rich))
        assert audit_counts(rich, [], manifest) == []

    def test_type_count_mismatch(self, rich):
        manifest = self._manifest(type_count=len(rich) + 7)
        issues = audit_counts(rich, [], manifest)
        assert [i.kind for i in issues] == [KIND_COUNT_MISMATCH]
        assert issues[0].where == "type_count"

    def test_graph_counts_checked_when_graph_given(self, rich):
        graph = JungloidGraph.build(rich, [])
        from repro.graph import graph_stats

        stats = graph_stats(graph)
        good = self._manifest(
            type_count=len(rich), node_count=stats.nodes, edge_count=stats.edges
        )
        assert audit_counts(rich, [], good, graph=graph) == []
        bad = self._manifest(
            type_count=len(rich), node_count=stats.nodes + 1, edge_count=stats.edges
        )
        issues = audit_counts(rich, [], bad, graph=graph)
        assert issues and issues[0].where == "node_count"


class TestAuditOnLoad:
    def test_audited_load_rejects_drifted_manifest(self, tmp_path, small_registry):
        """A snapshot whose manifest counts were tampered (but whose
        checksum was recomputed to match) is caught by the audit."""
        import json

        path = tmp_path / "graph.psnap"
        store = SnapshotStore(path)
        store.save(small_registry)
        raw = path.read_bytes()
        head, _, payload = raw.partition(b"\n")
        header = json.loads(head)
        header["manifest"]["mined_count"] = 99  # lie; checksum still valid
        path.write_bytes(
            json.dumps(header, separators=(",", ":")).encode() + b"\n" + payload
        )
        with pytest.raises(SnapshotIntegrityError) as exc_info:
            store.load()
        assert any(i.kind == KIND_COUNT_MISMATCH for i in exc_info.value.issues)

    def test_unaudited_load_skips_the_check(self, tmp_path, small_registry):
        import json

        path = tmp_path / "graph.psnap"
        store = SnapshotStore(path)
        store.save(small_registry)
        raw = path.read_bytes()
        head, _, payload = raw.partition(b"\n")
        header = json.loads(head)
        header["manifest"]["mined_count"] = 99
        path.write_bytes(
            json.dumps(header, separators=(",", ":")).encode() + b"\n" + payload
        )
        assert store.load(audit=False).registry.stats() == small_registry.stats()

    def test_full_bundle_audit_is_clean(self, small_prospector):
        issues = audit_bundle(
            small_prospector.registry,
            small_prospector.mined_jungloids,
            graph=small_prospector.graph,
        )
        assert issues == []
