"""Tests for signature graph construction (Section 3.1)."""

from repro.apispec import load_api_text
from repro.graph import SignatureGraph, node_label
from repro.jungloids import ElementaryKind
from repro.typesystem import VOID, named

API = """
package java.lang;
public class String {}

package g;
public interface IBase { String name(); }
public class Base implements IBase {
  public Base();
  public String name();
  public Child child;
  public static Base getDefault();
}
public class Child extends Base {
  public Child(Base parent);
  public Base[] siblings();
  protected Child secret();
}
public abstract class Shape {
  public Shape();
  public int area();
}
"""


def build(**kwargs):
    registry = load_api_text(API)
    return registry, SignatureGraph.from_registry(registry, **kwargs)


class TestNodesAndEdges:
    def test_all_declared_types_are_nodes(self):
        registry, graph = build()
        for t in registry.all_types():
            assert graph.has_node(t)
        assert graph.has_node(VOID)

    def test_array_types_in_signatures_become_nodes(self):
        registry, graph = build()
        from repro.typesystem import array_of

        assert graph.has_node(array_of(named("g.Base")))

    def test_instance_method_edge(self):
        registry, graph = build()
        edges = graph.out_edges(named("g.Base"))
        assert any(
            e.elementary.kind is ElementaryKind.INSTANCE_CALL
            and getattr(e.elementary.member, "name", "") == "name"
            for e in edges
        )

    def test_constructor_edges(self):
        registry, graph = build()
        void_edges = graph.out_edges(VOID)
        assert any(
            e.elementary.kind is ElementaryKind.CONSTRUCTOR and e.target == named("g.Base")
            for e in void_edges
        )
        # Child(Base) flows from Base.
        assert any(
            e.elementary.kind is ElementaryKind.CONSTRUCTOR and e.target == named("g.Child")
            for e in graph.out_edges(named("g.Base"))
        )

    def test_abstract_class_constructor_skipped(self):
        registry, graph = build()
        assert not any(
            e.elementary.kind is ElementaryKind.CONSTRUCTOR and e.target == named("g.Shape")
            for e in graph.out_edges(VOID)
        )

    def test_static_method_edge_from_void(self):
        registry, graph = build()
        assert any(
            getattr(e.elementary.member, "name", "") == "getDefault"
            for e in graph.out_edges(VOID)
        )

    def test_field_edge(self):
        registry, graph = build()
        assert any(
            e.elementary.kind is ElementaryKind.FIELD_ACCESS
            for e in graph.out_edges(named("g.Base"))
        )

    def test_widening_edges_follow_hierarchy(self):
        registry, graph = build()
        child_targets = {
            e.target for e in graph.out_edges(named("g.Child")) if e.is_widening
        }
        assert child_targets == {named("g.Base")}
        base_targets = {
            e.target for e in graph.out_edges(named("g.Base")) if e.is_widening
        }
        assert base_targets == {registry.object_type, named("g.IBase")}

    def test_protected_members_excluded_by_default(self):
        registry, graph = build()
        assert not any(
            getattr(e.elementary.member, "name", "") == "secret"
            for e in graph.edges()
        )

    def test_protected_members_included_when_asked(self):
        registry, graph = build(public_only=False)
        assert any(
            getattr(e.elementary.member, "name", "") == "secret"
            for e in graph.edges()
        )

    def test_no_downcast_edges_by_default(self):
        _, graph = build()
        assert graph.downcast_edge_count() == 0

    def test_downcast_ablation(self):
        registry, graph = build(include_downcasts=True)
        assert graph.downcast_edge_count() > 0
        # Object has a downcast edge to every class.
        obj_casts = [e for e in graph.out_edges(registry.object_type) if e.is_downcast]
        assert len(obj_casts) == len(registry.all_subtypes(registry.object_type))

    def test_in_edges_mirror_out_edges(self):
        _, graph = build()
        assert sum(len(graph.in_edges(n)) for n in graph.nodes) == graph.edge_count()


class TestPathConversion:
    def test_path_to_jungloid(self):
        registry, graph = build()
        base = named("g.Base")
        edge = next(
            e for e in graph.out_edges(base) if getattr(e.elementary.member, "name", "") == "name"
        )
        j = SignatureGraph.path_to_jungloid([edge])
        assert j.input_type == base

    def test_node_label(self):
        assert node_label(named("g.Base")) == "g.Base"
