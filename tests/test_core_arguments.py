"""Tests for the §4.3 argument-suggestion API on the Prospector facade."""

import pytest

from repro import Prospector


class TestSuggestArguments:
    def test_object_parameter_refined(self, standard_prospector):
        suggestions = standard_prospector.suggest_arguments(
            "org.eclipse.jface.viewers.Viewer", "setInput"
        )
        assert suggestions
        # Declared Object, but the corpus only ever passes JDT model types.
        observed = standard_prospector.observed_argument_types(
            "org.eclipse.jface.viewers.Viewer", "setInput"
        )
        assert observed == [
            "org.eclipse.jdt.core.ICompilationUnit",
            "org.eclipse.jdt.core.IJavaElement",
            "org.eclipse.jdt.core.IJavaProject",
        ]

    def test_suggestions_ordered_cheapest_first(self, standard_prospector):
        suggestions = standard_prospector.suggest_arguments(
            "org.eclipse.jface.viewers.Viewer", "setInput"
        )
        costs = [
            standard_prospector.config.cost_model.cost(s.jungloid) for s in suggestions
        ]
        assert costs == sorted(costs)

    def test_subtype_owner_query(self, standard_prospector):
        # Asking on TableViewer (a Viewer subtype) finds the same data.
        suggestions = standard_prospector.suggest_arguments(
            "org.eclipse.jface.viewers.TableViewer", "setInput"
        )
        assert suggestions

    def test_unknown_member_empty(self, standard_prospector):
        assert (
            standard_prospector.suggest_arguments(
                "org.eclipse.jface.viewers.Viewer", "noSuchMethod"
            )
            == []
        )

    def test_without_corpus_empty(self, standard_registry_and_corpus):
        registry, _ = standard_registry_and_corpus
        p = Prospector(registry)
        assert p.suggest_arguments("org.eclipse.jface.viewers.Viewer", "setInput") == []

    def test_cache_reused(self, standard_prospector):
        first = standard_prospector._argument_examples()
        second = standard_prospector._argument_examples()
        assert first is second
