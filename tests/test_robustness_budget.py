"""Tests for the Deadline/Budget abstraction and the injectable clock."""

from repro.robustness import Budget, Deadline, ManualClock


class TestManualClock:
    def test_starts_where_told(self):
        clock = ManualClock(start=5.0)
        assert clock() == 5.0

    def test_advance_moves_time(self):
        clock = ManualClock()
        assert clock() == 0.0
        clock.advance(2.5)
        assert clock() == 2.5

    def test_tick_advances_per_reading(self):
        clock = ManualClock(tick=0.1)
        assert clock() == 0.0
        assert clock() == 0.1
        assert abs(clock() - 0.2) < 1e-12
        assert clock.readings == 3

    def test_now_does_not_consume_a_reading(self):
        clock = ManualClock(tick=1.0)
        assert clock.now == 0.0
        assert clock.now == 0.0
        assert clock.readings == 0


class TestDeadline:
    def test_not_expired_before_budget(self):
        clock = ManualClock()
        deadline = Deadline.after(100.0, clock)
        assert not deadline.expired()
        assert deadline.remaining_ms() == 100.0

    def test_expired_after_budget(self):
        clock = ManualClock()
        deadline = Deadline.after(100.0, clock)
        clock.advance(0.2)  # 200 ms
        assert deadline.expired()
        assert deadline.remaining_ms() == 0.0

    def test_expired_at_exact_boundary(self):
        clock = ManualClock()
        deadline = Deadline.after(50.0, clock)
        clock.advance(0.05)
        assert deadline.expired()

    def test_elapsed_and_budget(self):
        clock = ManualClock()
        deadline = Deadline.after(80.0, clock)
        clock.advance(0.03)
        assert abs(deadline.elapsed_ms() - 30.0) < 1e-9
        assert abs(deadline.budget_ms - 80.0) < 1e-9

    def test_fraction_sub_deadline(self):
        clock = ManualClock()
        deadline = Deadline.after(100.0, clock)
        half = deadline.fraction(0.5)
        assert half.started_at == deadline.started_at
        clock.advance(0.06)  # 60 ms in
        assert half.expired()
        assert not deadline.expired()

    def test_fraction_one_is_identity(self):
        clock = ManualClock()
        deadline = Deadline.after(100.0, clock)
        assert deadline.fraction(1.0) is deadline

    def test_tick_clock_drives_expiry_without_cooperation(self):
        # Each reading advances 10 ms; a 1 ms deadline expires on the
        # first poll after creation. This is the pattern the search
        # degradation tests rely on.
        clock = ManualClock(tick=0.010)
        deadline = Deadline.after(1.0, clock)
        assert deadline.expired()


class TestBudget:
    def test_unlimited_budget_mints_no_deadline(self):
        budget = Budget()
        assert budget.unlimited
        assert budget.start() is None

    def test_budget_mints_fresh_deadlines(self):
        clock = ManualClock()
        budget = Budget(time_budget_ms=10.0, clock=clock)
        first = budget.start()
        clock.advance(0.02)
        assert first is not None and first.expired()
        second = budget.start()
        assert second is not None and not second.expired()
