"""Tests for the interprocedural cast-safety analyzer and verdict index."""

import pytest

from repro.analysis import (
    CastVerdict,
    CastVerdictIndex,
    analyze_corpus,
    cast_plausible,
    classify_pair,
)
from repro.apispec import load_api_text
from repro.corpus import load_corpus_texts
from repro.jungloids import Jungloid, downcast
from repro.runtime import Outcome, Runtime, eclipse_behavior_model

API = """
package java.lang;
public class String {}

package lib;
public interface IShape {}
public class Base {}
public class Sub extends Base implements IShape {
  public Sub();
}
public class Other extends Base {
  public Other();
}
public class Source {
  public Source();
  public Base opaque();
}
public class SubFactory {
  public SubFactory();
  public Sub make();
}
"""


def index_for(corpus_text, source="test.mj"):
    registry = load_api_text(API)
    program = load_corpus_texts(registry, [(source, corpus_text)], check=False)
    return registry, analyze_corpus(
        program.registry, program.units, program.corpus_types
    )


def finding(index, operand, target):
    registry = index.registry
    return index.verdict_for_cast(registry.lookup(operand), registry.lookup(target))


class TestClassification:
    def test_allocation_proved_is_justified(self):
        _, index = index_for(
            """
            package c;
            import lib.Base;
            import lib.Sub;
            class K {
              Sub get() {
                Base b = new Sub();
                Sub s = (Sub) b;
                return s;
              }
            }
            """
        )
        f = finding(index, "lib.Base", "lib.Sub")
        assert f.verdict is CastVerdict.JUSTIFIED
        assert "allocation" in f.evidence
        assert f.witnesses == 1
        assert "lib.Sub" in f.definite_types

    def test_opaque_api_flow_is_justified(self):
        _, index = index_for(
            """
            package c;
            import lib.Base;
            import lib.Sub;
            import lib.Source;
            class K {
              Sub get(Source src) {
                Base b = src.opaque();
                Sub s = (Sub) b;
                return s;
              }
            }
            """
        )
        f = finding(index, "lib.Base", "lib.Sub")
        assert f.verdict is CastVerdict.JUSTIFIED
        assert "corpus-witnessed" in f.evidence

    def test_definite_incompatible_is_inviable(self):
        _, index = index_for(
            """
            package c;
            import lib.Base;
            import lib.Sub;
            import lib.Other;
            class K {
              Sub get() {
                Base b = new Other();
                Sub s = (Sub) b;
                return s;
              }
            }
            """
        )
        f = finding(index, "lib.Base", "lib.Sub")
        assert f.verdict is CastVerdict.INVIABLE
        assert "definite and incompatible" in f.evidence
        assert f.definite_types == ("lib.Other",)

    def test_null_flow_does_not_prove_inviable(self):
        # A null reaching a cast yields NULL at runtime, never
        # CLASS_CAST; a null-only flow must stay compatible.
        _, index = index_for(
            """
            package c;
            import lib.Base;
            import lib.Sub;
            class K {
              Sub get() {
                Base b = null;
                Sub s = (Sub) b;
                return s;
              }
            }
            """
        )
        f = finding(index, "lib.Base", "lib.Sub")
        assert f.verdict is CastVerdict.JUSTIFIED

    def test_interprocedural_allocation_through_client_call(self):
        _, index = index_for(
            """
            package c;
            import lib.Base;
            import lib.Sub;
            class K {
              Base make() {
                return new Sub();
              }
              Sub get() {
                Base b = make();
                Sub s = (Sub) b;
                return s;
              }
            }
            """
        )
        f = finding(index, "lib.Base", "lib.Sub")
        assert f.verdict is CastVerdict.JUSTIFIED
        assert "allocation" in f.evidence

    def test_caller_argument_jump_proves_allocation(self):
        _, index = index_for(
            """
            package c;
            import lib.Base;
            import lib.Sub;
            class K {
              Sub narrow(Base b) {
                Sub s = (Sub) b;
                return s;
              }
              Sub run() {
                return narrow(new Sub());
              }
            }
            """
        )
        f = finding(index, "lib.Base", "lib.Sub")
        assert f.verdict is CastVerdict.JUSTIFIED
        assert "allocation" in f.evidence


class TestSynthesizedVerdicts:
    def test_unwitnessed_related_pair_is_plausible(self):
        registry, index = index_for(
            """
            package c;
            class K { }
            """
        )
        f = finding(index, "lib.Base", "lib.Sub")
        assert f.verdict is CastVerdict.PLAUSIBLE
        assert f.witnesses == 0

    def test_unwitnessed_unrelated_pair_is_inviable(self):
        registry, index = index_for(
            """
            package c;
            class K { }
            """
        )
        f = finding(index, "lib.Other", "lib.Sub")
        assert f.verdict is CastVerdict.INVIABLE

    def test_synthesized_findings_are_cached(self):
        _, index = index_for("package c;\nclass K { }\n")
        a = finding(index, "lib.Base", "lib.Sub")
        b = finding(index, "lib.Base", "lib.Sub")
        assert a is b

    def test_cast_plausible_interface_side(self):
        registry = load_api_text(API)
        base = registry.lookup("lib.Base")
        shape = registry.lookup("lib.IShape")
        other = registry.lookup("lib.Other")
        sub = registry.lookup("lib.Sub")
        assert cast_plausible(registry, base, shape)
        assert cast_plausible(registry, shape, other)
        assert not cast_plausible(registry, other, sub)


class TestJungloidComposition:
    def test_verdict_composes_worst_over_downcasts(self):
        registry, index = index_for(
            """
            package c;
            import lib.Base;
            import lib.Sub;
            class K {
              Sub get() {
                Base b = new Sub();
                Sub s = (Sub) b;
                return s;
              }
            }
            """
        )
        base = registry.lookup("lib.Base")
        sub = registry.lookup("lib.Sub")
        other = registry.lookup("lib.Other")
        good = Jungloid.of(downcast(base, sub))
        assert index.verdict_for_jungloid(good).verdict is CastVerdict.JUSTIFIED
        bad = Jungloid.of(downcast(other, sub))
        assert index.verdict_for_jungloid(bad).verdict is CastVerdict.INVIABLE
        assert index.demotion_rank(good) == 0
        assert index.demotion_rank(bad) == 1

    def test_no_downcast_is_vacuously_justified(self):
        _, index = index_for("package c;\nclass K { }\n")
        verdict = CastVerdict.worst(())
        assert verdict is CastVerdict.JUSTIFIED


class TestRoundTrip:
    def test_index_to_dict_from_dict(self):
        registry, index = index_for(
            """
            package c;
            import lib.Base;
            import lib.Sub;
            class K {
              Sub get() {
                Base b = new Sub();
                Sub s = (Sub) b;
                return s;
              }
            }
            """
        )
        data = index.to_dict()
        clone = CastVerdictIndex.from_dict(registry, data)
        assert len(clone) == len(index)
        assert clone.witnessed_pairs == index.witnessed_pairs
        original = finding(index, "lib.Base", "lib.Sub")
        restored = finding(clone, "lib.Base", "lib.Sub")
        assert restored == original
        assert clone.to_dict() == data


class TestSoundness:
    """No JUSTIFIED jungloid may dynamically throw ClassCastException."""

    def test_mined_examples_sound(self, standard_prospector):
        prospector = standard_prospector
        runtime = Runtime(eclipse_behavior_model(prospector.registry))
        assert prospector.mining is not None
        checked = 0
        for example in prospector.mining.examples:
            verdict = prospector.verify(example.jungloid).verdict
            outcome = runtime.execute(example.jungloid).outcome
            if verdict is CastVerdict.JUSTIFIED:
                assert outcome is not Outcome.CLASS_CAST
                checked += 1
        assert checked > 0

    def test_top_ranked_sound(self, standard_prospector):
        from repro.eval import TABLE1_PROBLEMS

        prospector = standard_prospector
        runtime = Runtime(eclipse_behavior_model(prospector.registry))
        checked = 0
        for problem in TABLE1_PROBLEMS:
            for result in prospector.query(problem.t_in, problem.t_out)[:3]:
                verdict = prospector.verify(result.jungloid).verdict
                outcome = runtime.execute(result.jungloid).outcome
                if verdict is CastVerdict.JUSTIFIED:
                    assert outcome is not Outcome.CLASS_CAST
                    checked += 1
        assert checked > 0


class TestFaultIsolation:
    def test_classify_pair_requires_observations(self):
        with pytest.raises(AssertionError):
            classify_pair([])
