"""Tests for example-jungloid generalization (the trie algorithm)."""

from repro.eval import chain_signature
from repro.jungloids import Jungloid, downcast, instance_call
from repro.minijava.ast import Position
from repro.mining import (
    ExampleJungloid,
    GeneralizedExample,
    generalize_examples,
    generalize_to_suffixes,
    unique_suffixes,
)
from repro.typesystem import Method, named

A = named("g.A")
B = named("g.B")
H = named("g.H")  # hashtable-ish
T = named("g.T")
U = named("g.U")
OBJ = named("java.lang.Object")


def step(owner, name, returns):
    return instance_call(Method(owner, name, returns))[0]


GET_TARGETS = step(A, "getTargets", H)
GET_PROPS = step(A, "getProperties", H)
GET = step(H, "get", OBJ)
MAKE_A = step(B, "makeA", A)
OTHER_A = step(B, "otherA", A)
CAST_T = downcast(OBJ, T)
CAST_U = downcast(OBJ, U)


def example(*steps, tag="x.mj"):
    return ExampleJungloid(
        jungloid=Jungloid.from_iterable(steps),
        source=tag,
        method_name="m",
        cast_position=Position(1, 1),
    )


class TestShortestSuffix:
    def test_lone_example_keeps_one_precast_step(self):
        [g] = generalize_examples([example(MAKE_A, GET_TARGETS, GET, CAST_T)])
        assert chain_signature(g.suffix) == ("H.get", "cast T")
        assert g.trimmed_steps == 2

    def test_figure7_shared_suffix(self):
        gens = generalize_examples(
            [
                example(MAKE_A, GET_TARGETS, GET, CAST_T),
                example(OTHER_A, GET_TARGETS, GET, CAST_T),
                example(MAKE_A, GET_PROPS, GET, CAST_U),
            ]
        )
        target_suffixes = {
            chain_signature(g.suffix) for g in gens if g.suffix.output_type == T
        }
        # Conflict with the U cast forces retention through getTargets...
        assert target_suffixes == {("A.getTargets", "H.get", "cast T")}
        # ...and the U example keeps getProperties.
        u_suffixes = {chain_signature(g.suffix) for g in gens if g.suffix.output_type == U}
        assert u_suffixes == {("A.getProperties", "H.get", "cast U")}

    def test_identical_precast_different_casts_keep_everything(self):
        gens = generalize_examples(
            [
                example(MAKE_A, GET_TARGETS, GET, CAST_T),
                example(MAKE_A, GET_TARGETS, GET, CAST_U),
            ]
        )
        for g in gens:
            assert g.suffix.steps == g.example.jungloid.steps

    def test_same_cast_never_conflicts(self):
        gens = generalize_examples(
            [
                example(MAKE_A, GET_TARGETS, GET, CAST_T),
                example(OTHER_A, GET_PROPS, GET, CAST_T),
            ]
        )
        # Both end in T: the minimal one-step suffix suffices for both.
        for g in gens:
            assert chain_signature(g.suffix) == ("H.get", "cast T")

    def test_min_precast_steps_enforced(self):
        gens = generalize_examples(
            [example(MAKE_A, GET_TARGETS, GET, CAST_T)], min_precast_steps=2
        )
        assert chain_signature(gens[0].suffix) == ("A.getTargets", "H.get", "cast T")

    def test_non_cast_examples_ignored(self):
        assert generalize_examples([example(MAKE_A, GET_TARGETS)]) == []


class TestSuffixSets:
    def test_unique_suffixes_dedupe(self):
        gens = generalize_examples(
            [
                example(MAKE_A, GET_TARGETS, GET, CAST_T),
                example(OTHER_A, GET_TARGETS, GET, CAST_T),
            ]
        )
        assert len(unique_suffixes(gens)) == 1

    def test_generalize_to_suffixes_end_to_end(self):
        suffixes = generalize_to_suffixes(
            [
                example(MAKE_A, GET_TARGETS, GET, CAST_T),
                example(MAKE_A, GET_PROPS, GET, CAST_U),
            ]
        )
        assert {chain_signature(s) for s in suffixes} == {
            ("A.getTargets", "H.get", "cast T"),
            ("A.getProperties", "H.get", "cast U"),
        }

    def test_suffix_is_true_suffix(self):
        gens = generalize_examples(
            [example(MAKE_A, GET_TARGETS, GET, CAST_T)]
        )
        for g in gens:
            n = len(g.suffix)
            assert g.example.jungloid.steps[-n:] == g.suffix.steps
            assert g.suffix.steps[-1].is_downcast


class TestEdgeCases:
    def test_duplicate_examples_same_cast(self):
        # The same slice mined twice (e.g. copy-pasted corpus code) must
        # not conflict with itself: both keep the minimal suffix.
        gens = generalize_examples(
            [
                example(MAKE_A, GET_TARGETS, GET, CAST_T),
                example(MAKE_A, GET_TARGETS, GET, CAST_T, tag="copy.mj"),
            ]
        )
        assert len(gens) == 2
        for g in gens:
            assert chain_signature(g.suffix) == ("H.get", "cast T")

    def test_single_example_corpus(self):
        [g] = generalize_examples([example(GET, CAST_T)])
        assert chain_signature(g.suffix) == ("H.get", "cast T")
        assert g.trimmed_steps == 0

    def test_identical_paths_different_casts_both_survive(self):
        gens = generalize_examples(
            [
                example(MAKE_A, GET_TARGETS, GET, CAST_T),
                example(MAKE_A, GET_TARGETS, GET, CAST_U),
            ]
        )
        # Full-path retention for both; neither example is dropped.
        assert len(gens) == 2
        assert {g.suffix.output_type for g in gens} == {T, U}


class TestIncrementalGeneralizer:
    def examples(self):
        return [
            example(MAKE_A, GET_TARGETS, GET, CAST_T),
            example(OTHER_A, GET_TARGETS, GET, CAST_T),
            example(MAKE_A, GET_PROPS, GET, CAST_U),
        ]

    def test_insert_matches_batch(self):
        from repro.mining import IncrementalGeneralizer

        examples = self.examples()
        inc = IncrementalGeneralizer()
        for e in examples:
            assert inc.insert(e)
        batch = generalize_examples(examples)
        assert [g.suffix.steps for g in inc.generalize(examples)] == [
            g.suffix.steps for g in batch
        ]

    def test_remove_restores_earlier_state(self):
        from repro.mining import IncrementalGeneralizer

        examples = self.examples()
        inc = IncrementalGeneralizer()
        inc.insert(examples[0])
        before = inc.suffix_for(examples[0]).steps
        # Adding then removing the conflicting U example must restore
        # the original (shorter) suffix for the T example.
        inc.insert(examples[2])
        widened = inc.suffix_for(examples[0]).steps
        assert len(widened) > len(before)
        assert inc.remove(examples[2])
        assert inc.suffix_for(examples[0]).steps == before

    def test_remove_unknown_raises(self):
        import pytest

        from repro.mining import IncrementalGeneralizer

        inc = IncrementalGeneralizer()
        inc.insert(example(MAKE_A, GET_TARGETS, GET, CAST_T))
        with pytest.raises(KeyError):
            inc.remove(example(GET_PROPS, GET, CAST_U))

    def test_non_cast_examples_are_ignored(self):
        from repro.mining import IncrementalGeneralizer

        inc = IncrementalGeneralizer()
        plain = example(MAKE_A, GET_TARGETS)
        assert not inc.insert(plain)
        assert not inc.remove(plain)
        assert inc.generalize([plain]) == []
