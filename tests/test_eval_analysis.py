"""Tests for the static-vs-dynamic agreement report (BENCH_analysis)."""

import json

import pytest

from repro.eval import run_analysis_eval, write_bench_analysis
from repro.eval.perf import _write_bench_json


@pytest.fixture(scope="module")
def report(standard_prospector):
    return run_analysis_eval(standard_prospector, timing_rounds=2)


class TestAgreement:
    def test_top_ranked_agreement_meets_threshold(self, report):
        assert report.top_ranked.total > 0
        assert report.top_ranked.agreement_rate >= 0.95

    def test_mined_examples_agreement_is_total(self, report):
        assert report.mined_examples.total > 0
        assert report.mined_examples.agreement_rate == 1.0

    def test_soundness_holds(self, report):
        assert report.soundness_ok
        assert report.top_ranked.soundness_violations == 0
        assert report.mined_examples.soundness_violations == 0

    def test_confusion_counts_cover_population(self, report):
        assert sum(report.top_ranked.confusion.values()) == report.top_ranked.total
        assert (
            sum(report.mined_examples.confusion.values())
            == report.mined_examples.total
        )


class TestCostMetrics:
    def test_verdict_throughput_measured(self, report):
        assert report.verdicts_per_second > 0
        assert report.verdict_lookups_timed > 0

    def test_analyze_overhead_under_ten_percent(self, report):
        # Acceptance criterion: verdict computation adds <10% to the
        # staged index build.
        assert report.build_overhead_pct is not None
        assert report.build_overhead_pct < 10.0

    def test_witnessed_pairs_counted(self, report):
        assert report.witnessed_pairs > 0


class TestSerialization:
    def test_to_dict_shape(self, report):
        data = report.to_dict()
        assert data["soundness_ok"] is True
        assert data["top_ranked"]["agreement_rate"] >= 0.95
        assert data["mined_examples"]["total"] == report.mined_examples.total
        json.dumps(data)  # must be JSON-serializable

    def test_format_report_mentions_soundness(self, report):
        text = report.format_report()
        assert "soundness: ok" in text
        assert "agree" in text

    def test_write_bench_analysis_mirrors_to_root(self, report, tmp_path):
        out = tmp_path / "benchmarks" / "out"
        out.mkdir(parents=True)
        path = out / "BENCH_analysis.json"
        write_bench_analysis(report, path)
        assert json.loads(path.read_text())["soundness_ok"] is True
        mirror = tmp_path / "BENCH_analysis.json"
        assert mirror.exists()
        assert mirror.read_text() == path.read_text()

    def test_write_outside_canonical_layout_does_not_mirror(self, tmp_path):
        path = tmp_path / "somewhere.json"
        _write_bench_json(path, {"ok": True})
        assert json.loads(path.read_text()) == {"ok": True}
        assert list(tmp_path.iterdir()) == [path]
