"""Tests for the mini-Java lexer."""

import pytest

from repro.minijava import MjLexError, MjTokenKind, tokenize


def texts(src):
    return [t.text for t in tokenize(src) if t.kind is not MjTokenKind.EOF]


class TestTokens:
    def test_keywords_and_identifiers(self):
        toks = tokenize("return newValue new")
        assert toks[0].kind is MjTokenKind.KEYWORD
        assert toks[1].kind is MjTokenKind.IDENT  # maximal munch: not "new"
        assert toks[2].kind is MjTokenKind.KEYWORD

    def test_int_literals(self):
        toks = tokenize("0 42 0xFF 10L")
        assert all(t.kind is MjTokenKind.INT_LIT for t in toks[:-1])

    def test_string_literal(self):
        toks = tokenize('"hello world"')
        assert toks[0].kind is MjTokenKind.STRING_LIT
        assert toks[0].text == "hello world"

    def test_string_with_escapes(self):
        toks = tokenize(r'"a\"b"')
        assert toks[0].text == 'a\\"b'

    def test_unterminated_string(self):
        with pytest.raises(MjLexError):
            tokenize('"never ends')

    def test_char_literal(self):
        toks = tokenize("'x' '\\n'")
        assert toks[0].kind is MjTokenKind.CHAR_LIT
        assert toks[0].text == "x"
        assert toks[1].text == "\\n"

    def test_unterminated_char(self):
        with pytest.raises(MjLexError):
            tokenize("'x")

    def test_two_char_operators_are_single_tokens(self):
        assert texts("a == b != c <= d >= e && f || g") == [
            "a", "==", "b", "!=", "c", "<=", "d", ">=", "e", "&&", "f", "||", "g",
        ]

    def test_comments(self):
        assert texts("a // line\n b /* block\nmore */ c") == ["a", "b", "c"]

    def test_unterminated_block_comment(self):
        with pytest.raises(MjLexError):
            tokenize("a /* no end")

    def test_unexpected_character(self):
        with pytest.raises(MjLexError):
            tokenize("a # b")


class TestPositions:
    def test_multiline_positions(self):
        toks = tokenize("a\n  b")
        assert (toks[0].line, toks[0].column) == (1, 1)
        assert (toks[1].line, toks[1].column) == (2, 3)

    def test_position_inside_line(self):
        toks = tokenize("ab cd")
        assert toks[1].column == 4
