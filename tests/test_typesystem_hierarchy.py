"""Tests for derived hierarchy queries (LUB, assignability, generality)."""

import pytest

from repro.typesystem import (
    PRIMITIVES,
    TypeKind,
    TypeRegistry,
    VOID,
    common_supertype,
    generality_key,
    is_assignable,
    least_upper_bounds,
    more_general,
    named,
    subtype_closure,
    topological_types,
)


@pytest.fixture()
def registry():
    r = TypeRegistry()
    r.declare("t.A")
    r.declare("t.B", superclass="t.A")
    r.declare("t.C", superclass="t.A")
    r.declare("t.D", superclass="t.B")
    r.declare("t.I", kind=TypeKind.INTERFACE)
    r.declare("t.X", superclass="t.B", interfaces=["t.I"])
    r.declare("t.Y", superclass="t.C", interfaces=["t.I"])
    return r


class TestLeastUpperBounds:
    def test_related_types(self, registry):
        assert least_upper_bounds(registry, named("t.D"), named("t.B")) == (named("t.B"),)

    def test_siblings(self, registry):
        assert least_upper_bounds(registry, named("t.B"), named("t.C")) == (named("t.A"),)

    def test_interface_join_returns_all_minimal(self, registry):
        lubs = least_upper_bounds(registry, named("t.X"), named("t.Y"))
        assert set(lubs) == {named("t.A"), named("t.I")}
        # Most specific first (deepest in the hierarchy).
        assert registry.depth(lubs[0]) >= registry.depth(lubs[-1])

    def test_common_supertype_fold(self, registry):
        assert common_supertype(registry, [named("t.D"), named("t.B"), named("t.C")]) == named("t.A")
        assert common_supertype(registry, []) is None


class TestAssignability:
    def test_identity(self, registry):
        assert is_assignable(registry, named("t.B"), named("t.B"))

    def test_widening(self, registry):
        assert is_assignable(registry, named("t.D"), named("t.A"))
        assert not is_assignable(registry, named("t.A"), named("t.D"))

    def test_primitives_exact_only(self, registry):
        assert is_assignable(registry, PRIMITIVES["int"], PRIMITIVES["int"])
        assert not is_assignable(registry, PRIMITIVES["int"], PRIMITIVES["long"])
        assert not is_assignable(registry, PRIMITIVES["int"], named("t.A"))

    def test_void_never_assignable(self, registry):
        assert not is_assignable(registry, VOID, named("t.A"))
        assert not is_assignable(registry, named("t.A"), VOID)


class TestGenerality:
    def test_more_general(self, registry):
        assert more_general(registry, named("t.A"), named("t.D"))
        assert not more_general(registry, named("t.D"), named("t.A"))
        assert not more_general(registry, named("t.A"), named("t.A"))

    def test_generality_key_orders_by_depth(self, registry):
        assert generality_key(registry, registry.object_type) == 0
        assert generality_key(registry, named("t.A")) < generality_key(registry, named("t.D"))


class TestTraversals:
    def test_topological_supertypes_first(self, registry):
        order = topological_types(registry)
        index = {t: i for i, t in enumerate(order)}
        assert index[named("t.A")] < index[named("t.B")] < index[named("t.D")]
        assert index[registry.object_type] == 0

    def test_topological_covers_all(self, registry):
        assert len(topological_types(registry)) == len(registry)

    def test_subtype_closure(self, registry):
        closure = subtype_closure(registry, [named("t.B")])
        assert set(closure) == {named("t.B"), named("t.D"), named("t.X")}
