"""Tests for the Section-5 performance measurement helpers."""

from repro.eval import (
    measure_build_memory,
    measure_bundle,
    measure_load,
    measure_queries,
    run_perf,
)


class TestMeasurements:
    def test_bundle_measures_real_bytes(self, small_prospector):
        text, size = measure_bundle(small_prospector)
        assert size == len(text.encode("utf-8"))
        assert size > 500

    def test_load_time_positive(self, small_prospector):
        text, _ = measure_bundle(small_prospector)
        assert measure_load(text, repeats=1) > 0

    def test_build_memory(self):
        peak = measure_build_memory(lambda: [0] * 100000)
        assert peak > 100000 * 4

    def test_measure_queries_one_per_problem(self, standard_prospector):
        times = measure_queries(standard_prospector)
        assert len(times) == 20
        assert all(t >= 0 for t in times)


class TestPerfReport:
    def test_full_report(self, small_prospector):
        from repro.eval.problems import Table1Problem
        from repro.eval.oracle import SolutionOracle

        problems = [
            Table1Problem(
                1,
                "toy",
                "test",
                "demo.io.InputStream",
                "demo.io.BufferedReader",
                0.1,
                1,
                SolutionOracle.none(),
            )
        ]
        report = run_perf(small_prospector, lambda: None, problems)
        assert report.bundle_bytes > 0
        assert report.load_seconds > 0
        assert len(report.query_seconds) == 1
        assert 0 <= report.fraction_under(10.0) <= 1
        assert "load" in report.format_report()

    def test_fraction_under_empty(self):
        from repro.eval import PerfReport

        report = PerfReport()
        assert report.fraction_under(1.0) == 0.0
        assert report.mean_query_seconds == 0.0
        assert report.max_query_seconds == 0.0


class TestStorePerf:
    def test_run_store_perf_end_to_end(self, small_prospector, tmp_path):
        from repro.eval import run_store_perf

        def rebuild():
            from repro import Prospector

            return Prospector(small_prospector.registry, small_prospector.corpus)

        report = run_store_perf(
            small_prospector, rebuild, tmp_path / "graph.psnap", repeats=1
        )
        assert report.snapshot_bytes > 500
        assert report.snapshot_load_seconds > 0
        assert report.verified_load_seconds >= report.snapshot_load_seconds * 0.1
        assert report.rebuild_seconds > 0
        assert report.speedup == (
            report.rebuild_seconds / report.snapshot_load_seconds
        )

    def test_report_serializes_and_formats(self):
        from repro.eval import StorePerfReport

        report = StorePerfReport(
            snapshot_bytes=1024,
            snapshot_load_seconds=0.01,
            verified_load_seconds=0.02,
            rebuild_seconds=0.10,
        )
        data = report.to_dict()
        assert data["snapshot_bytes"] == 1024
        assert data["speedup"] == 10.0
        text = report.format_report()
        assert "snapshot load" in text
        assert "rebuild" in text

    def test_write_bench_store(self, tmp_path):
        import json

        from repro.eval import StorePerfReport, write_bench_store

        report = StorePerfReport(
            snapshot_bytes=2048,
            snapshot_load_seconds=0.005,
            verified_load_seconds=0.006,
            rebuild_seconds=0.05,
        )
        out = tmp_path / "BENCH_store.json"
        write_bench_store(report, out)
        recorded = json.loads(out.read_text())
        assert recorded["snapshot_bytes"] == 2048
        assert recorded["speedup"] == 10.0
