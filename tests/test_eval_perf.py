"""Tests for the Section-5 performance measurement helpers."""

from repro.eval import (
    measure_build_memory,
    measure_bundle,
    measure_load,
    measure_queries,
    run_perf,
)


class TestMeasurements:
    def test_bundle_measures_real_bytes(self, small_prospector):
        text, size = measure_bundle(small_prospector)
        assert size == len(text.encode("utf-8"))
        assert size > 500

    def test_load_time_positive(self, small_prospector):
        text, _ = measure_bundle(small_prospector)
        assert measure_load(text, repeats=1) > 0

    def test_build_memory(self):
        peak = measure_build_memory(lambda: [0] * 100000)
        assert peak > 100000 * 4

    def test_measure_queries_one_per_problem(self, standard_prospector):
        times = measure_queries(standard_prospector)
        assert len(times) == 20
        assert all(t >= 0 for t in times)


class TestPerfReport:
    def test_full_report(self, small_prospector):
        from repro.eval.problems import Table1Problem
        from repro.eval.oracle import SolutionOracle

        problems = [
            Table1Problem(
                1,
                "toy",
                "test",
                "demo.io.InputStream",
                "demo.io.BufferedReader",
                0.1,
                1,
                SolutionOracle.none(),
            )
        ]
        report = run_perf(small_prospector, lambda: None, problems)
        assert report.bundle_bytes > 0
        assert report.load_seconds > 0
        assert len(report.query_seconds) == 1
        assert 0 <= report.fraction_under(10.0) <= 1
        assert "load" in report.format_report()

    def test_fraction_under_empty(self):
        from repro.eval import PerfReport

        report = PerfReport()
        assert report.fraction_under(1.0) == 0.0
        assert report.mean_query_seconds == 0.0
        assert report.max_query_seconds == 0.0
