"""Tests for the Section-5 performance measurement helpers."""

from repro.eval import (
    measure_build_memory,
    measure_bundle,
    measure_load,
    measure_queries,
    run_perf,
)


class TestMeasurements:
    def test_bundle_measures_real_bytes(self, small_prospector):
        text, size = measure_bundle(small_prospector)
        assert size == len(text.encode("utf-8"))
        assert size > 500

    def test_load_time_positive(self, small_prospector):
        text, _ = measure_bundle(small_prospector)
        assert measure_load(text, repeats=1) > 0

    def test_build_memory(self):
        peak = measure_build_memory(lambda: [0] * 100000)
        assert peak > 100000 * 4

    def test_measure_queries_one_per_problem(self, standard_prospector):
        times = measure_queries(standard_prospector)
        assert len(times) == 20
        assert all(t >= 0 for t in times)


class TestPerfReport:
    def test_full_report(self, small_prospector):
        from repro.eval.problems import Table1Problem
        from repro.eval.oracle import SolutionOracle

        problems = [
            Table1Problem(
                1,
                "toy",
                "test",
                "demo.io.InputStream",
                "demo.io.BufferedReader",
                0.1,
                1,
                SolutionOracle.none(),
            )
        ]
        report = run_perf(small_prospector, lambda: None, problems)
        assert report.bundle_bytes > 0
        assert report.load_seconds > 0
        assert len(report.query_seconds) == 1
        assert 0 <= report.fraction_under(10.0) <= 1
        assert "load" in report.format_report()

    def test_fraction_under_empty(self):
        from repro.eval import PerfReport

        report = PerfReport()
        assert report.fraction_under(1.0) == 0.0
        assert report.mean_query_seconds == 0.0
        assert report.max_query_seconds == 0.0


class TestStorePerf:
    def test_run_store_perf_end_to_end(self, small_prospector, tmp_path):
        from repro.eval import run_store_perf

        def rebuild():
            from repro import Prospector

            return Prospector(small_prospector.registry, small_prospector.corpus)

        report = run_store_perf(
            small_prospector, rebuild, tmp_path / "graph.psnap", repeats=1
        )
        assert report.snapshot_bytes > 500
        assert report.snapshot_load_seconds > 0
        assert report.verified_load_seconds >= report.snapshot_load_seconds * 0.1
        assert report.rebuild_seconds > 0
        assert report.speedup == (
            report.rebuild_seconds / report.snapshot_load_seconds
        )

    def test_report_serializes_and_formats(self):
        from repro.eval import StorePerfReport

        report = StorePerfReport(
            snapshot_bytes=1024,
            snapshot_load_seconds=0.01,
            verified_load_seconds=0.02,
            rebuild_seconds=0.10,
        )
        data = report.to_dict()
        assert data["snapshot_bytes"] == 1024
        assert data["speedup"] == 10.0
        text = report.format_report()
        assert "snapshot load" in text
        assert "rebuild" in text

    def test_write_bench_store(self, tmp_path):
        import json

        from repro.eval import StorePerfReport, write_bench_store

        report = StorePerfReport(
            snapshot_bytes=2048,
            snapshot_load_seconds=0.005,
            verified_load_seconds=0.006,
            rebuild_seconds=0.05,
        )
        out = tmp_path / "BENCH_store.json"
        write_bench_store(report, out)
        recorded = json.loads(out.read_text())
        assert recorded["snapshot_bytes"] == 2048
        assert recorded["speedup"] == 10.0


class TestPercentile:
    def test_nearest_rank(self):
        from repro.eval import percentile

        samples = [0.1, 0.2, 0.3, 0.4]
        assert percentile(samples, 50) == 0.2
        assert percentile(samples, 95) == 0.4
        assert percentile(samples, 100) == 0.4
        assert percentile(samples, 0) == 0.1

    def test_empty_is_zero(self):
        from repro.eval import percentile

        assert percentile([], 50) == 0.0

    def test_order_independent(self):
        from repro.eval import percentile

        assert percentile([3.0, 1.0, 2.0], 50) == 2.0


class TestStressGraph:
    def test_shape_scales_with_fan_out(self):
        from repro.eval import build_stress_graph
        from repro.search import count_paths
        from repro.typesystem import named

        fan = 4
        registry, graph = build_stress_graph(fan_out=fan)
        # Source, Target, java.lang.String, void, fan mids/leaves/deads.
        assert graph.node_count() == 4 + 3 * fan
        assert (
            count_paths(
                graph,
                named("stress.Source"),
                named("stress.Target"),
                max_cost=4,
            )
            == fan * fan
        )

    def test_kernel_agrees_on_stress_graph(self):
        from repro.eval import build_stress_graph
        from repro.search import GraphSearch, SearchConfig
        from repro.typesystem import named

        registry, graph = build_stress_graph(fan_out=3)
        src, dst = named("stress.Source"), named("stress.Target")
        ref = GraphSearch(graph, config=SearchConfig(use_kernel=False))
        ker = GraphSearch(graph, config=SearchConfig(use_kernel=True))
        texts = lambda engine: [
            j.render_expression("x") for j in engine.solve(src, dst)
        ]
        assert texts(ref) == texts(ker)
        assert len(texts(ker)) == 9


class TestSearchPerf:
    def test_run_search_perf_end_to_end(self, small_prospector):
        from repro.eval import run_search_perf
        from repro.eval.problems import Table1Problem
        from repro.eval.oracle import SolutionOracle

        problems = [
            Table1Problem(
                1,
                "toy",
                "test",
                "demo.io.InputStream",
                "demo.io.BufferedReader",
                0.1,
                1,
                SolutionOracle.none(),
            )
        ]
        report = run_search_perf(
            small_prospector,
            problems,
            batch_rounds=2,
            repeats=1,
            stress_fan_out=3,
        )
        assert report.identical_results
        assert len(report.reference_query_seconds) == 1
        assert len(report.kernel_query_seconds) == 1
        assert report.compile_seconds > 0
        assert report.batch_query_count == 2
        assert report.one_at_a_time_seconds > 0
        assert report.batch_seconds > 0
        assert report.stress_nodes == 13  # 4 + 3 * fan_out
        assert report.stress_paths == 9
        assert report.stress_reference_seconds > 0
        assert report.stress_kernel_seconds > 0
        text = report.format_report()
        assert "single-query speedup" in text
        assert "throughput speedup" in text

    def test_report_math_and_serialization(self):
        from repro.eval import SearchPerfReport

        report = SearchPerfReport(
            reference_query_seconds=[0.004, 0.008],
            kernel_query_seconds=[0.001, 0.002],
            identical_results=True,
            compile_seconds=0.005,
            batch_rounds=3,
            batch_query_count=60,
            one_at_a_time_seconds=0.6,
            batch_seconds=0.1,
            stress_reference_seconds=0.03,
            stress_kernel_seconds=0.01,
        )
        assert report.single_query_speedup == 4.0
        assert report.one_at_a_time_qps == 100.0
        assert report.batch_qps == 600.0
        assert abs(report.batch_throughput_speedup - 6.0) < 1e-9
        assert report.stress_speedup == 3.0
        data = report.to_dict()
        assert data["table1"]["single_query_speedup"] == 4.0
        assert data["table1"]["identical_results"] is True
        assert abs(data["batch"]["throughput_speedup"] - 6.0) < 1e-9
        assert data["stress"]["speedup"] == 3.0

    def test_zero_guards(self):
        from repro.eval import SearchPerfReport

        report = SearchPerfReport()
        assert report.single_query_speedup == 0.0
        assert report.one_at_a_time_qps == 0.0
        assert report.batch_qps == 0.0
        assert report.batch_throughput_speedup == 0.0
        assert report.stress_speedup == 0.0

    def test_write_bench_search(self, tmp_path):
        import json

        from repro.eval import SearchPerfReport, write_bench_search

        report = SearchPerfReport(
            kernel_query_seconds=[0.001],
            reference_query_seconds=[0.002],
            identical_results=True,
        )
        out = tmp_path / "BENCH_search.json"
        write_bench_search(report, out)
        recorded = json.loads(out.read_text())
        assert recorded["table1"]["single_query_speedup"] == 2.0
        assert recorded["table1"]["identical_results"] is True
