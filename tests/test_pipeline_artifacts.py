"""Tests for stage artifacts: fingerprints, per-file record round-trips,
the snapshot stage sidecar, and incremental restarts."""

import json

import pytest

from repro import Prospector
from repro.corpus import load_corpus_texts
from repro.pipeline import (
    CorpusPipeline,
    FileMineRecord,
    StageFormatError,
    check_stage_dict,
    diff_fingerprints,
    fingerprint_text,
    fingerprint_texts,
)
from repro.store import (
    SnapshotCorruptError,
    load_stage_sidecar,
    save_stage_sidecar,
    stage_sidecar_path,
    try_load_stage_sidecar,
)

from .conftest import SMALL_CORPUS


class TestFingerprints:
    def test_deterministic_and_content_sensitive(self):
        assert fingerprint_text("abc") == fingerprint_text("abc")
        assert fingerprint_text("abc") != fingerprint_text("abd")

    def test_duplicate_source_names_rejected(self):
        with pytest.raises(ValueError):
            fingerprint_texts([("a.mj", "x"), ("a.mj", "y")])

    def test_diff_categories(self):
        old = fingerprint_texts([("a.mj", "1"), ("b.mj", "2"), ("c.mj", "3")])
        new = fingerprint_texts([("a.mj", "1"), ("b.mj", "2x"), ("d.mj", "4")])
        diff = diff_fingerprints(old, new)
        assert diff.added == ("d.mj",)
        assert diff.changed == ("b.mj",)
        assert diff.removed == ("c.mj",)
        assert diff.unchanged == ("a.mj",)
        assert not diff.is_empty
        assert diff_fingerprints(old, old).is_empty


@pytest.fixture()
def small_pipeline(small_registry):
    return CorpusPipeline.build(small_registry, [("handler.mj", SMALL_CORPUS)])


class TestRecordRoundTrip:
    def test_record_survives_dict_round_trip(self, small_pipeline):
        registry = small_pipeline.program.registry
        for record in small_pipeline.records.values():
            back = FileMineRecord.from_dict(registry, record.to_dict())
            assert back.source == record.source
            assert back.fingerprint == record.fingerprint
            assert back.examples == record.examples
            assert back.faults == record.faults
            assert back.decl_deps == record.decl_deps
            assert back.site_deps == record.site_deps
            assert back.type_deps == record.type_deps

    def test_stage_dict_is_json_safe(self, small_pipeline):
        data = small_pipeline.to_stage_dict()
        check_stage_dict(json.loads(json.dumps(data)))

    def test_check_rejects_foreign_or_incomplete_dicts(self, small_pipeline):
        with pytest.raises(StageFormatError):
            check_stage_dict({"format": "something-else"})
        data = small_pipeline.to_stage_dict()
        del data["records"]
        with pytest.raises(StageFormatError):
            check_stage_dict(data)


class TestFromArtifacts:
    def test_restart_reuses_cached_records(self, small_registry, small_pipeline):
        data = json.loads(json.dumps(small_pipeline.to_stage_dict()))
        reborn = CorpusPipeline.from_artifacts(small_registry, data)
        assert [j.steps for j in reborn.suffixes] == [
            j.steps for j in small_pipeline.suffixes
        ]
        # The rebuild mined nothing: every record came from the artifacts.
        assert reborn.last_stats.files_remined == ()
        assert reborn.last_stats.files_reused == 1

    def test_changed_extraction_config_discards_cache(
        self, small_registry, small_pipeline
    ):
        from repro.mining import ExtractionConfig

        data = small_pipeline.to_stage_dict()
        reborn = CorpusPipeline.from_artifacts(
            small_registry, data, extraction=ExtractionConfig(max_steps=3)
        )
        # Config mismatch: cached examples may be stale, so re-mine all.
        assert reborn.last_stats.files_remined == ("handler.mj",)


class TestSidecar:
    def test_save_load_round_trip(self, tmp_path, small_pipeline):
        snap = tmp_path / "g.snap"
        payload = small_pipeline.to_stage_dict()
        written = save_stage_sidecar(snap, payload)
        assert written == stage_sidecar_path(snap)
        assert load_stage_sidecar(snap) == json.loads(json.dumps(payload))

    def test_missing_and_damaged_sidecars(self, tmp_path, small_pipeline):
        snap = tmp_path / "g.snap"
        assert try_load_stage_sidecar(snap) is None
        path = save_stage_sidecar(snap, small_pipeline.to_stage_dict())
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF  # flip one payload byte
        path.write_bytes(bytes(raw))
        with pytest.raises(SnapshotCorruptError):
            load_stage_sidecar(snap)
        assert try_load_stage_sidecar(snap) is None

    def test_truncated_sidecar_rejected(self, tmp_path, small_pipeline):
        snap = tmp_path / "g.snap"
        path = save_stage_sidecar(snap, small_pipeline.to_stage_dict())
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 10])
        with pytest.raises(SnapshotCorruptError):
            load_stage_sidecar(snap)


class TestProspectorRestart:
    def queries(self):
        return [("demo.ui.ISelection", "demo.ui.Item")]

    def answers(self, prospector):
        return [
            [s.jungloid.render_expression("x") for s in prospector.query(a, b)]
            for a, b in self.queries()
        ]

    def test_snapshot_restart_stays_incremental(self, tmp_path, small_registry):
        corpus = load_corpus_texts(small_registry, [("handler.mj", SMALL_CORPUS)])
        first = Prospector(small_registry, corpus)
        snap = tmp_path / "g.snap"
        first.save_snapshot(snap)
        assert stage_sidecar_path(snap).exists()

        second = Prospector.from_snapshot(snap)
        assert second.pipeline is not None
        assert self.answers(second) == self.answers(first)
        # The restart can update incrementally: untouched files reuse
        # their persisted records.
        stats = second.update_corpus(
            upserts=[("handler.mj", SMALL_CORPUS + "\n// touched\n")]
        )
        assert stats.files_remined == ("handler.mj",)
        assert self.answers(second) == self.answers(first)

    def test_damaged_sidecar_degrades_to_query_only(self, tmp_path, small_registry):
        corpus = load_corpus_texts(small_registry, [("handler.mj", SMALL_CORPUS)])
        first = Prospector(small_registry, corpus)
        snap = tmp_path / "g.snap"
        first.save_snapshot(snap)
        stage_sidecar_path(snap).write_bytes(b"garbage\nnot json")

        second = Prospector.from_snapshot(snap)
        assert second.pipeline is None  # sidecar unusable, snapshot fine
        assert self.answers(second) == self.answers(first)
        with pytest.raises(RuntimeError):
            second.update_corpus(upserts=[("handler.mj", SMALL_CORPUS)])
