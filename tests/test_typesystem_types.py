"""Tests for the type objects."""

import pytest

from repro.typesystem import (
    PRIMITIVES,
    VOID,
    ArrayType,
    NamedType,
    PrimitiveType,
    array_of,
    is_reference,
    named,
    type_package,
)


class TestPrimitivesAndVoid:
    def test_all_java_primitives_exist(self):
        assert set(PRIMITIVES) == {
            "boolean", "byte", "short", "char", "int", "long", "float", "double",
        }

    def test_primitive_display(self):
        assert str(PRIMITIVES["int"]) == "int"
        assert PRIMITIVES["int"].display == "int"

    def test_void_singleton_semantics(self):
        assert str(VOID) == "void"
        assert VOID == VOID
        assert not is_reference(VOID)

    def test_primitives_are_not_references(self):
        assert not is_reference(PRIMITIVES["boolean"])


class TestNamedType:
    def test_named_constructor(self):
        t = named("java.io.File")
        assert t.simple == "File"
        assert t.package == "java.io"
        assert str(t) == "java.io.File"
        assert is_reference(t)

    def test_equality_by_name(self):
        assert named("a.B") == named("a.B")
        assert named("a.B") != named("a.C")

    def test_hashable(self):
        assert len({named("a.B"), named("a.B"), named("a.C")}) == 2


class TestArrayType:
    def test_single_dimension(self):
        t = array_of(named("a.B"))
        assert str(t) == "a.B[]"
        assert t.dimensions == 1
        assert t.package == "a"
        assert is_reference(t)

    def test_multi_dimensional(self):
        t = array_of(named("a.B"), 3)
        assert str(t) == "a.B[][][]"
        assert t.dimensions == 3
        assert t.ultimate_element == named("a.B")

    def test_primitive_array(self):
        t = array_of(PRIMITIVES["int"], 2)
        assert str(t) == "int[][]"
        assert t.package == ""

    def test_zero_dims_rejected(self):
        with pytest.raises(ValueError):
            array_of(named("a.B"), 0)


class TestTypePackage:
    def test_named(self):
        assert type_package(named("java.io.File")) == "java.io"

    def test_array(self):
        assert type_package(array_of(named("java.io.File"))) == "java.io"

    def test_primitive_and_void(self):
        assert type_package(PRIMITIVES["int"]) == ""
        assert type_package(VOID) == ""
